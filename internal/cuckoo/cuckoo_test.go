package cuckoo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertContains(t *testing.T) {
	f := New(1000)
	for i := uint64(0); i < 500; i++ {
		if !f.Insert(i) {
			t.Fatalf("insert %d failed at len %d", i, f.Len())
		}
	}
	for i := uint64(0); i < 500; i++ {
		if !f.Contains(i) {
			t.Fatalf("false negative for %d", i)
		}
	}
	if f.Len() != 500 {
		t.Fatalf("Len = %d, want 500", f.Len())
	}
}

func TestDelete(t *testing.T) {
	f := New(100)
	f.Insert(42)
	if !f.Delete(42) {
		t.Fatal("delete of present key failed")
	}
	if f.Contains(42) {
		t.Fatal("key still present after delete")
	}
	if f.Delete(42) {
		t.Fatal("second delete reported success")
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", f.Len())
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := New(10000)
	for i := uint64(0); i < 10000; i++ {
		f.Insert(i)
	}
	fp := 0
	const probes = 100000
	for i := uint64(1 << 40); i < 1<<40+probes; i++ {
		if f.Contains(i) {
			fp++
		}
	}
	// 16-bit fingerprints give ~0.02% expected; allow an order of margin.
	if rate := float64(fp) / probes; rate > 0.005 {
		t.Fatalf("false positive rate %.4f too high", rate)
	}
}

func TestHighLoadInsertions(t *testing.T) {
	// The filter must take at least its nominal capacity without failing.
	n := 5000
	f := New(n)
	for i := 0; i < n; i++ {
		if !f.Insert(uint64(i)) {
			t.Fatalf("insert failed at %d/%d", i, n)
		}
	}
}

func TestReset(t *testing.T) {
	f := New(100)
	for i := uint64(0); i < 50; i++ {
		f.Insert(i)
	}
	f.Reset()
	if f.Len() != 0 {
		t.Fatalf("Len = %d after reset", f.Len())
	}
	for i := uint64(0); i < 50; i++ {
		if f.Contains(i) {
			t.Fatalf("key %d survived reset", i)
		}
	}
}

// Property: no false negatives for any insert/delete interleaving where the
// key is inserted and not subsequently deleted.
func TestPropertyNoFalseNegatives(t *testing.T) {
	fcheck := func(keys []uint64, seed int64) bool {
		f := New(4 * (len(keys) + 1))
		rng := rand.New(rand.NewSource(seed))
		live := make(map[uint64]int)
		for _, k := range keys {
			if rng.Intn(3) == 0 && live[k] > 0 {
				f.Delete(k)
				live[k]--
			} else if f.Insert(k) {
				live[k]++
			}
		}
		for k, n := range live {
			if n > 0 && !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fcheck, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateInsertions(t *testing.T) {
	// A key inserted twice survives one delete (counting semantics, as the
	// marking component relies on for overlapping retransmission windows).
	f := New(100)
	f.Insert(7)
	f.Insert(7)
	f.Delete(7)
	if !f.Contains(7) {
		t.Fatal("key absent after 2 inserts and 1 delete")
	}
	f.Delete(7)
	if f.Contains(7) {
		t.Fatal("key present after matching deletes")
	}
}

func TestTinyCapacity(t *testing.T) {
	f := New(1)
	if !f.Insert(99) || !f.Contains(99) {
		t.Fatal("tiny filter cannot hold one item")
	}
}

func BenchmarkInsert(b *testing.B) {
	f := New(b.N + 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	f := New(1 << 16)
	for i := uint64(0); i < 1<<15; i++ {
		f.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Contains(uint64(i) & (1<<16 - 1))
	}
}
