// Failover: an extension beyond the paper. One leaf uplink loses carrier
// mid-run with no routing reconvergence. ECMP keeps hashing flows onto the
// dead port and blackholes them until its (absent) control plane would
// repair the FIB; Vertigo's switches see the dead port as a full queue and
// deflect around it in the dataplane, within microseconds.
//
// This example drives the internal scenario API directly (link failures are
// a research knob, not part of the stable public surface).
package main

import (
	"fmt"
	"log"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

func main() {
	fmt.Println("16-host leaf-spine at 50% load; leaf 0's first uplink dies at T/2")
	fmt.Printf("%-8s  %-12s  %-12s  %-8s  %s\n",
		"scheme", "flows done", "mean FCT", "drops", "flushed@fail")
	for _, policy := range []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo} {
		cfg := core.DefaultConfig(policy, transport.DCTCP)
		cfg.LeafSpineCfg = topo.LeafSpineConfig{
			Spines: 2, Leaves: 4, HostsPerLeaf: 4,
			HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
			LinkDelay: 500 * units.Nanosecond,
		}
		cfg.SimTime = 60 * units.Millisecond
		cfg.BGLoad = 0.30
		cfg.IncastScale = 8
		cfg.IncastFlowSize = 40_000
		cfg.SetIncastLoad(0.20)
		// Host access links occupy indices 0..hosts-1; the first leaf-spine
		// uplink follows.
		cfg.LinkFailures = []core.LinkFailure{{Link: cfg.NumHosts(), At: cfg.SimTime / 2}}

		res, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-8s  %5.1f%%        %-12v  %-8d  %d\n",
			policy, s.FlowCompletionP, s.MeanFCT, s.Drops,
			res.Collector.Drops[metrics.DropLinkDown])
	}
	fmt.Println("\nexpected shape: Vertigo completes nearly all flows with the lowest FCT;")
	fmt.Println("ECMP and DRILL keep hashing onto the dead port, so the flows pinned to it")
	fmt.Println("stall (their losses appear as ordinary overflow-style drops at the dead port).")
}
