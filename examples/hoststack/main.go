// Hoststack: using the deployable Vertigo end-host components on real byte
// frames — what you would integrate into a userspace (DPDK-style) network
// stack, independent of the simulator.
//
// The sender side segments an application message, marks every segment with
// its flowinfo header (remaining flow size, boosting state), and serializes
// the header with the layer-3 shim encoding. The frames then cross a channel
// that delivers them badly out of order. The receiver side decodes headers
// and runs the ordering component, which hands the transport a perfectly
// ordered stream.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"vertigo"
)

func main() {
	marker := vertigo.NewMarker(vertigo.MarkerOptions{BoostFactor: 2})
	orderer := vertigo.NewOrderer(vertigo.OrdererOptions{Timeout: 360 * time.Microsecond})

	// The application message to transfer.
	message := bytes.Repeat([]byte("burst-tolerant datacenter networks! "), 2000)
	const flowKey = 42
	marker.StartFlow(flowKey, int64(len(message)))

	// TX path: segment, mark, encode the shim header in front of each
	// payload, exactly as frames would go on the wire.
	type frame struct {
		hdr     [vertigo.ShimHeaderLen]byte
		payload []byte
		last    bool
	}
	var frames []frame
	for off := 0; off < len(message); off += vertigo.MSS {
		end := off + vertigo.MSS
		if end > len(message) {
			end = len(message)
		}
		var f frame
		fi, err := marker.Mark(flowKey, int64(off), end-off, f.hdr[:], 0x0800)
		if err != nil {
			log.Fatal(err)
		}
		_ = fi
		f.payload = message[off:end]
		f.last = end == len(message)
		frames = append(frames, f)
	}
	marker.EndFlow(flowKey)
	fmt.Printf("sender: %d bytes segmented into %d marked frames (+%d B header each)\n",
		len(message), len(frames), vertigo.ShimHeaderLen)

	// The network: shuffle the frames (SRPT queues + deflection reorder
	// heavily in flight).
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })

	// RX path: decode each shim header, feed the ordering component, and
	// reassemble whatever it releases — in order, by construction.
	var reassembled bytes.Buffer
	now := time.Unix(0, 0)
	deliver := func(segs []vertigo.Segment) {
		for _, s := range segs {
			reassembled.Write(s.Payload)
		}
	}
	for _, f := range frames {
		fi, inner, err := vertigo.DecodeShim(f.hdr[:])
		if err != nil || inner != 0x0800 {
			log.Fatalf("decode: %v (inner %#x)", err, inner)
		}
		deliver(orderer.Receive(now, vertigo.Segment{
			Key:     flowKey,
			Info:    fi,
			Len:     len(f.payload),
			Last:    f.last,
			Payload: f.payload,
		}))
		now = now.Add(500 * time.Nanosecond)
	}

	fmt.Printf("orderer: buffered %d early frames, %d timeouts\n", orderer.Held, orderer.Timeouts)
	if !bytes.Equal(reassembled.Bytes(), message) {
		log.Fatalf("reassembly mismatch: got %d bytes", reassembled.Len())
	}
	fmt.Printf("receiver: reassembled all %d bytes in order from a fully shuffled stream\n",
		reassembled.Len())
}
