// Fattree: the paper's three-tier validation (§4.2, Fig. 7) at example
// scale. Runs ECMP, DIBS and Vertigo over a k=4 fat-tree under Swift and
// prints the completion-time distributions.
package main

import (
	"fmt"
	"log"
	"time"

	"vertigo"
)

func main() {
	fmt.Println("fat-tree k=4 (16 hosts, 20 switches), Swift, 25% background + 35% incast")
	fmt.Printf("%-8s  %-12s  %-12s  %-12s  %-10s\n",
		"scheme", "QCT p50", "QCT p99", "FCT p99", "drop rate")
	for _, scheme := range []vertigo.Scheme{
		vertigo.SchemeECMP, vertigo.SchemeDIBS, vertigo.SchemeVertigo,
	} {
		cfg := vertigo.Defaults(scheme, vertigo.TransportSwift)
		cfg.Topology = vertigo.TopologyFatTree
		cfg.FatTreeK = 4
		cfg.Duration = 60 * time.Millisecond
		cfg.BackgroundLoad = 0.25
		cfg.IncastScale = 8
		cfg.IncastFlowKB = 40
		cfg.IncastLoad = 0.35

		rep, err := vertigo.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %-12v  %-12v  %-12v  %.4f%%\n",
			scheme, rep.QCTPercentile(50), rep.P99QCT, rep.P99FCT, rep.DropRatePct)
	}
	fmt.Println("\nexpected shape (paper Fig. 7): Vertigo cuts the QCT tail of both")
	fmt.Println("ECMP and random deflection; Swift keeps drops near zero for all.")
}
