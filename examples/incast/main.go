// Incast comparison: the paper's core scenario. A fixed background load plus
// increasingly aggressive incast queries, across all four forwarding schemes.
// Reproduces the shape of paper Figures 5/8 at example scale: ECMP and
// random deflection (DIBS) stop completing queries as the burst intensity
// grows, while Vertigo keeps absorbing them.
package main

import (
	"fmt"
	"log"
	"time"

	"vertigo"
)

func main() {
	schemes := []vertigo.Scheme{
		vertigo.SchemeECMP, vertigo.SchemeDRILL, vertigo.SchemeDIBS, vertigo.SchemeVertigo,
	}
	loads := []float64{0.30, 0.50, 0.70}

	fmt.Println("16-host leaf-spine, DCTCP, 15% background + rising incast load")
	fmt.Printf("%-8s  %-6s  %-12s  %-12s  %-10s  %s\n",
		"scheme", "load", "queries", "mean QCT", "drops", "deflections")
	for _, scheme := range schemes {
		for _, load := range loads {
			cfg := vertigo.Defaults(scheme, vertigo.TransportDCTCP)
			cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4
			cfg.Duration = 60 * time.Millisecond
			cfg.BackgroundLoad = 0.15
			cfg.IncastScale = 10
			cfg.IncastFlowKB = 40
			cfg.IncastLoad = load - cfg.BackgroundLoad

			rep, err := vertigo.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s  %-6.0f%%  %4d/%-6d  %-12v  %-10d  %d\n",
				scheme, load*100, rep.QueriesCompleted, rep.QueriesStarted,
				rep.MeanQCT, rep.Drops, rep.Deflections)
		}
	}
	fmt.Println("\nexpected shape: Vertigo completes the most queries at every load,")
	fmt.Println("and is the only scheme whose QCT stays flat as the load grows.")
}
