// Quickstart: run one Vertigo simulation with the public API and print the
// headline metrics. This is the 30-second tour of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"vertigo"
)

func main() {
	// Start from the paper's defaults, then shrink the fabric and horizon so
	// the example finishes in seconds on a laptop.
	cfg := vertigo.Defaults(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4 // 16 hosts
	cfg.Duration = 50 * time.Millisecond

	// Offer 25% background traffic (Facebook cache-follower sizes) plus 25%
	// incast load: 8-way queries of 40 KB responses.
	cfg.BackgroundLoad = 0.25
	cfg.IncastScale = 8
	cfg.IncastFlowKB = 40
	cfg.IncastLoad = 0.25

	rep, err := vertigo.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Vertigo + DCTCP on a 16-host leaf-spine, 50% offered load")
	fmt.Printf("  queries completed:  %d/%d (%.1f%%)\n",
		rep.QueriesCompleted, rep.QueriesStarted, rep.QueryCompletionPct)
	fmt.Printf("  mean / p99 QCT:     %v / %v\n", rep.MeanQCT, rep.P99QCT)
	fmt.Printf("  mean / p99 FCT:     %v / %v\n", rep.MeanFCT, rep.P99FCT)
	fmt.Printf("  packets deflected:  %d (drops: %d, %.4f%%)\n",
		rep.Deflections, rep.Drops, rep.DropRatePct)
	fmt.Printf("  reordering seen by transport: %d packets\n", rep.ReorderedPackets)
}
