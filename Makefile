# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race vet bench bench-obs exp-small exp-medium examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race detector over everything, including the parallel sweep runner and the
# concurrent-experiments test.
race:
	$(GO) test -race ./...

# Regenerate every paper table/figure at benchmark (tiny) scale.
bench: bench-obs
	$(GO) test -bench=. -benchmem ./...

# Standing observability benchmark: a tiny instrumented fig1 sweep whose
# manifest (events/sec, wall time, run count) is the tracked blob.
bench-obs:
	$(GO) run ./cmd/vertigo-exp -scale tiny -sample-tick 200us -out artifacts fig1 >/dev/null
	cp artifacts/manifest.json BENCH_obs.json
	@echo "BENCH_obs.json:" && cat BENCH_obs.json

# Regenerate every paper table/figure from the CLI.
exp-small:
	$(GO) run ./cmd/vertigo-exp -scale small -parallel 2 all

exp-medium:
	$(GO) run ./cmd/vertigo-exp -scale medium -parallel 2 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hoststack
	$(GO) run ./examples/incast
	$(GO) run ./examples/fattree
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
