# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race race-serve vet bench bench-core bench-obs bench-run bench-scale bench-parallel bench-gate bench-merge exp-small exp-medium examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race detector over everything, including the parallel sweep runner and the
# concurrent-experiments test. The sweep-heavy exp package needs the long
# timeout on single-CPU runners.
race:
	$(GO) test -race -timeout 45m ./...

# The daemon's suite (admission control, retry classification, journal
# resume, the 50-job chaos drill) under the race detector — what CI's
# serve-smoke job runs first.
race-serve:
	$(GO) test -race -timeout 20m ./internal/serve/

# Regenerate every paper table/figure at benchmark (tiny) scale.
bench: bench-obs
	$(GO) test -bench=. -benchmem ./...

# Standing event-core benchmark: engine micro-benches (events/sec, ns/op,
# allocs/op, the cancel-churn delta against the frozen baseline) plus one
# full parallel sweep, recorded as BENCH_core.json so the perf trajectory of
# the hot loop is tracked in-repo. Sweep benches run a whole experiment per
# iteration, hence -benchtime=1x for that pass.
bench-core:
	@{ $(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkRegistry' -benchmem -benchtime 1s . && \
	   $(GO) test -run '^$$' -bench 'BenchmarkSweep' -benchmem -benchtime 1x . ; } \
	  | $(GO) run ./cmd/benchjson -out BENCH_core.json
	@echo "BENCH_core.json:" && cat BENCH_core.json

# Standing observability benchmark: a tiny instrumented fig1 sweep whose
# manifest (events/sec, wall time, run count) is the tracked blob.
bench-obs:
	$(GO) run ./cmd/vertigo-exp -scale tiny -sample-tick 200us -out artifacts fig1 >/dev/null
	cp artifacts/manifest.json BENCH_obs.json
	@echo "BENCH_obs.json:" && cat BENCH_obs.json

# Standing whole-run throughput benchmark: one frozen leaf-spine incast
# scenario simulated end-to-end (pkts/s, pkts/run) plus the per-packet
# datapath alloc gauges, recorded as BENCH_run.json. The pkts/s baseline
# is sticky: -prev carries the recorded pre-optimization reference
# forward so improvement_pct always reads against the same run.
bench-run:
	@{ $(GO) test -run '^$$' -bench 'BenchmarkRunThroughput$$' -benchtime 3x . && \
	   $(GO) test -run '^$$' -bench 'BenchmarkDatapath' -benchmem -benchtime 200000x . ; } \
	  | $(GO) run ./cmd/benchjson -prev BENCH_run.json -out BENCH_run.json
	@echo "BENCH_run.json:" && cat BENCH_run.json

# Standing million-flow benchmark: the scale=huge k=16 fat-tree scenario
# (1024 hosts, >1M flows in 10 simulated ms) run end-to-end once, recording
# pkts/s, flows/run and the process peak RSS as BENCH_scale.json. Run it
# alone: peak RSS is a process high-water mark, so sharing the process with
# other benchmarks would inflate the reading. The pkts/s baseline is sticky,
# like bench-run's.
bench-scale:
	@$(GO) test -run '^$$' -bench 'BenchmarkRunThroughputHuge' -benchtime 1x -timeout 30m . \
	  | $(GO) run ./cmd/benchjson -prev BENCH_scale.json -out BENCH_scale.json
	@echo "BENCH_scale.json:" && cat BENCH_scale.json

# Standing multi-core benchmark: the scale=huge scenario serial and sharded
# across 4 topology domains in one pass, recording both pkts/s figures and
# their ratio (the parallel_run block) as BENCH_parallel.json. Run with
# GOMAXPROCS unrestricted — the speedup is the whole point — and note the
# serial run here exists only as the speedup denominator; BENCH_scale.json
# stays the scale trajectory of record.
bench-parallel:
	@$(GO) test -run '^$$' -bench 'BenchmarkRunThroughputHuge(Parallel)?$$' -benchtime 1x -timeout 60m . \
	  | $(GO) run ./cmd/benchjson -out BENCH_parallel.json
	@echo "BENCH_parallel.json:" && cat BENCH_parallel.json

# Apply the CI perf gates to the committed benchmark blobs: the core
# cancel-churn delta must hold its >=20% win, whole-run pkts/s may not
# regress more than 10% against the sticky baseline, the per-packet
# datapath and metrics-registry benches must stay alloc-free, the
# million-flow scale run must hold its pkts/s and fit the 2 GiB peak-RSS
# envelope, and the sharded run must beat serial >= 2.0x on machines with
# at least 4 cores (warn-only below that). Same invocations CI runs.
bench-gate:
	$(GO) run ./cmd/benchgate -min-improve 20 -zero-alloc BenchmarkEngine -zero-alloc BenchmarkRegistry BENCH_core.json
	$(GO) run ./cmd/benchgate -max-regress 10 -zero-alloc BenchmarkDatapath BENCH_run.json
	$(GO) run ./cmd/benchgate -max-regress 10 -max-rss-mb 2048 BENCH_scale.json
	$(GO) run ./cmd/benchgate -min-parallel-speedup 2.0 BENCH_parallel.json

# Fold the per-suite blobs into BENCH.json, keyed by git revision, so the
# perf trajectory across PRs lives in one file.
bench-merge:
	$(GO) run ./cmd/benchjson -merge -rev $$(git rev-parse --short HEAD) \
	  -out BENCH.json BENCH_core.json BENCH_obs.json BENCH_run.json BENCH_scale.json BENCH_parallel.json
	@echo "BENCH.json:" && cat BENCH.json

# Regenerate every paper table/figure from the CLI.
exp-small:
	$(GO) run ./cmd/vertigo-exp -scale small -parallel 2 all

exp-medium:
	$(GO) run ./cmd/vertigo-exp -scale medium -parallel 2 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hoststack
	$(GO) run ./examples/incast
	$(GO) run ./examples/fattree
	$(GO) run ./examples/failover

clean:
	$(GO) clean ./...
