package vertigo_test

// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation, plus the §4.4 host-path microbenchmarks and engine/
// substrate ablations. Simulation benches run the corresponding experiment
// at the Tiny scale (a full sweep per iteration) and report the headline
// scalar via b.ReportMetric, so `go test -bench` regenerates every artifact:
//
//	go test -bench=BenchmarkFig5 -benchmem
//
// prints the Fig. 5 table rows alongside the timing. Absolute values track
// the scaled-down fabric; see EXPERIMENTS.md for the shape comparison
// against the paper.

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"vertigo"
	"vertigo/internal/buffer"
	"vertigo/internal/exp"
	"vertigo/internal/fabric"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/sim/baseline"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// benchExperiment runs one experiment sweep per iteration and reports its
// tables through b.Log on the final iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	sc := exp.Tiny
	var tables []*exp.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err = e.Run(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, t := range tables {
		var sb tableWriter
		t.Fprint(&sb)
		b.Log("\n" + string(sb))
	}
}

type tableWriter []byte

func (w *tableWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// One benchmark per paper artifact.

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkSec2(b *testing.B)   { benchExperiment(b, "sec2") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkDefSet(b *testing.B) { benchExperiment(b, "defset") }

// BenchmarkNonBursty regenerates the §4.2 non-incast workload comparison.
func BenchmarkNonBursty(b *testing.B) { benchExperiment(b, "nonbursty") }

// BenchmarkHeadline runs the paper's headline comparison (85% load, all four
// schemes under DCTCP) once per iteration and reports Vertigo's mean QCT.
func BenchmarkHeadline(b *testing.B) {
	for _, scheme := range []vertigo.Scheme{
		vertigo.SchemeECMP, vertigo.SchemeDRILL, vertigo.SchemeDIBS, vertigo.SchemeVertigo,
	} {
		scheme := scheme
		b.Run(string(scheme), func(b *testing.B) {
			var rep *vertigo.Report
			for i := 0; i < b.N; i++ {
				cfg := vertigo.Defaults(scheme, vertigo.TransportDCTCP)
				cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4
				cfg.Duration = 40 * time.Millisecond
				cfg.BackgroundLoad = 0.25
				cfg.IncastScale = 8
				cfg.IncastFlowKB = 20
				cfg.IncastLoad = 0.60
				var err error
				rep, err = vertigo.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.MeanQCT.Microseconds()), "meanQCT_µs")
			b.ReportMetric(rep.QueryCompletionPct, "queryCompl_%")
			b.ReportMetric(float64(rep.Drops), "drops")
		})
	}
}

// --- §4.4 host-path microbenchmarks -----------------------------------------
//
// The paper measures the marking component's cost at two hash lookups
// (~300 ns on their Xeon) and <0.1% throughput impact. These benches measure
// the same code paths: per-segment marking (flow table + cuckoo filter +
// header encode) and per-segment ordering on in-order and reordered streams.

func BenchmarkMarkingPerPacket(b *testing.B) {
	// Mark each segment of a flow exactly once, cycling flows so the filter
	// stays at a realistic occupancy (one flow's worth of signatures).
	const segsPerFlow = 1 << 14
	m := vertigo.NewMarker(vertigo.MarkerOptions{FlowCapacity: 4 * segsPerFlow})
	const flowSize = int64(segsPerFlow) * vertigo.MSS
	key := uint64(1)
	m.StartFlow(key, flowSize)
	var hdr [vertigo.ShimHeaderLen]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := i % segsPerFlow
		if seg == 0 && i > 0 {
			m.EndFlow(key)
			key++
			m.StartFlow(key, flowSize)
		}
		off := int64(seg) * vertigo.MSS
		if _, err := m.Mark(key, off, vertigo.MSS, hdr[:], 0x0800); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkingRetransmission(b *testing.B) {
	m := vertigo.NewMarker(vertigo.MarkerOptions{FlowCapacity: 1 << 12})
	m.StartFlow(1, 1<<20)
	var hdr [vertigo.ShimHeaderLen]byte
	m.Mark(1, 0, vertigo.MSS, hdr[:], 0x0800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Same segment every time: exercises the duplicate-detected path.
		if _, err := m.Mark(1, 0, vertigo.MSS, hdr[:], 0x0800); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderingInOrder(b *testing.B) {
	o := vertigo.NewOrderer(vertigo.OrdererOptions{})
	now := time.Unix(0, 0)
	const n = 1 << 14
	segs := markedSegments(b, 1, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One full flow per epoch; each epoch runs under a fresh key so the
		// completed flow's tombstone is left behind, as in steady state.
		s := segs[i%n]
		s.Key += uint64(i / n)
		o.Receive(now, s)
	}
}

func BenchmarkOrderingReversedWindows(b *testing.B) {
	// Worst realistic case: every 16-segment window arrives fully inverted
	// (the SRPT-queue pattern the ordering layer exists to absorb).
	const win = 16
	const n = 1 << 14 // multiple of win, so epochs stay window-aligned
	o := vertigo.NewOrderer(vertigo.OrdererOptions{})
	now := time.Unix(0, 0)
	segs := markedSegments(b, 1, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := i % n
		base := pos / win * win
		s := segs[base+win-1-pos%win]
		s.Key += uint64(i / n)
		o.Receive(now, s)
	}
}

func markedSegments(b *testing.B, key uint64, n int) []vertigo.Segment {
	b.Helper()
	m := vertigo.NewMarker(vertigo.MarkerOptions{FlowCapacity: 2 * n})
	size := int64(n) * vertigo.MSS
	m.StartFlow(key, size)
	segs := make([]vertigo.Segment, n)
	for i := 0; i < n; i++ {
		fi, err := m.Mark(key, int64(i)*vertigo.MSS, vertigo.MSS, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		segs[i] = vertigo.Segment{Key: key, Info: fi, Len: vertigo.MSS, Last: i == n-1}
	}
	return segs
}

func BenchmarkShimEncodeDecode(b *testing.B) {
	fi := vertigo.FlowInfo{RFS: 123456, RetCnt: 3, FlowID: 5, First: true}
	var buf [vertigo.ShimHeaderLen]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vertigo.EncodeShim(buf[:], fi, 0x0800); err != nil {
			b.Fatal(err)
		}
		if _, _, err := vertigo.DecodeShim(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel runs the Fig. 1 sweep with the worker pool at full
// concurrency and reports the speedup against a sequential (-j 1) run of the
// same sweep. The rendered tables are byte-identical either way (see
// TestParallelSweepDeterminism); on a single-core machine the speedup
// degenerates to ~1.
func BenchmarkSweepParallel(b *testing.B) {
	e, err := exp.ByID("fig1")
	if err != nil {
		b.Fatal(err)
	}
	defer func(old int) { exp.Concurrency = old }(exp.Concurrency)

	exp.Concurrency = 1
	t0 := time.Now()
	if _, err := e.Run(exp.Tiny, nil); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(t0)

	exp.Concurrency = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(exp.Tiny, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	par := b.Elapsed() / time.Duration(b.N)
	if par > 0 {
		b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup_vs_j1")
	}
	b.ReportMetric(float64(exp.Concurrency), "workers")
}

// BenchmarkEngineAllocs pins the engine's event free list: steady-state
// schedule/cancel/fire cycles reuse recycled event structs, so allocs/op
// is 0 even with a tombstoned timer reaped per op.
func BenchmarkEngineAllocs(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the free list and heap backing array
		eng.After(units.Time(i), fn)
	}
	eng.Run(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := eng.After(50, fn)
		eng.After(100, fn)
		tm.Cancel()
		eng.Run(eng.Now() + 200)
	}
}

// BenchmarkSendPathAllocs drives a saturated DCTCP flow through the full
// host/fabric stack and reports heap allocations per transmitted data packet.
// With the packet free list and recycled timer events this sits at ~0.
func BenchmarkSendPathAllocs(b *testing.B) {
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := fabric.New(eng, tp, met, fabric.DefaultConfig(fabric.ECMP))
	ids := &packet.IDGen{}
	hosts := make([]*host.Host, tp.NumHosts)
	for i := range hosts {
		h := host.NewHost(i, eng, net, met,
			host.DefaultMarkerConfig(), host.DefaultOrdererConfig(), false)
		h.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
			return transport.NewReceiver(h, met, ids, first)
		})
		hosts[i] = h
	}
	tcfg := transport.DefaultConfig(transport.DCTCP)
	spec := transport.FlowSpec{ID: ids.Next(), Src: 0, Dst: 2, Size: 1 << 40, Query: -1}
	transport.NewSender(hosts[0], met, tcfg, ids, spec, nil).Start()
	eng.Run(5 * units.Millisecond) // warm pools, queues and the event heap

	pkts0 := met.PacketsSent
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Run(eng.Now() + units.Millisecond)
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	if pkts := met.PacketsSent - pkts0; pkts > 0 {
		b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/float64(pkts), "allocs/pkt")
		b.ReportMetric(float64(pkts)/float64(b.N), "pkts/op")
	}
}

// --- substrate ablations -----------------------------------------------------

// BenchmarkEngine measures raw event throughput of the simulator core.
func BenchmarkEngine(b *testing.B) {
	eng := sim.NewEngine(1)
	var tick func()
	fired := 0
	tick = func() {
		fired++
		if fired < b.N {
			eng.After(100, tick)
		}
	}
	b.ResetTimer()
	eng.After(100, tick)
	eng.Run(units.Time(1) << 60)
}

// BenchmarkEngineChained measures the fire-and-forget fast path: a Sched
// handler rescheduling itself rides one self-rescheduling event frame, the
// pattern saturated fabric ports follow.
func BenchmarkEngineChained(b *testing.B) {
	eng := sim.NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < b.N {
			eng.SchedAfter(100, tick)
		}
	}
	b.ResetTimer()
	eng.Sched(100, tick)
	eng.Run(units.Time(1) << 60)
	b.StopTimer()
	reportEventsPerSec(b, eng)
}

// cancelChurnFlows and friends model TCP Reno's retransmit-timer churn: many
// flows each hold a long-deadline RTO timer that is cancelled and re-armed on
// every ACK, while simulated time crawls forward packet by packet. The RTO is
// three orders of magnitude longer than the inter-ACK gap, so under lazy
// cancellation nearly every cancelled frame must be reclaimed by the
// amortized sweep rather than by reaching its deadline.
const (
	cancelChurnFlows = 256
	cancelChurnRTO   = 4096
	cancelChurnStep  = 4
)

// BenchmarkEngineCancelChurn is the Cancel-heavy regression benchmark for
// the 4-ary lazy-cancellation heap.
func BenchmarkEngineCancelChurn(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	timers := make([]sim.Timer, cancelChurnFlows)
	for i := range timers {
		timers[i] = eng.After(units.Time(cancelChurnRTO+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % cancelChurnFlows
		timers[f].Cancel()
		eng.Run(eng.Now() + cancelChurnStep)
		timers[f] = eng.After(cancelChurnRTO, fn)
	}
	b.StopTimer()
	st := eng.Stats()
	b.ReportMetric(float64(st.TombstonedPops)/float64(b.N), "tombstones/op")
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(st.Scheduled)/b.Elapsed().Seconds(), "events/s")
	}
}

// BenchmarkEngineCancelChurnBaseline runs the identical churn script on the
// frozen pre-rewrite engine (container/heap, eager heap.Remove cancel) so
// BENCH_core.json records the rewrite's delta in the same process.
func BenchmarkEngineCancelChurnBaseline(b *testing.B) {
	eng := baseline.NewEngine()
	fn := func() {}
	timers := make([]baseline.Timer, cancelChurnFlows)
	for i := range timers {
		timers[i] = eng.After(units.Time(cancelChurnRTO+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % cancelChurnFlows
		timers[f].Cancel()
		eng.Run(eng.Now() + cancelChurnStep)
		timers[f] = eng.After(cancelChurnRTO, fn)
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	}
}

// BenchmarkEngineFanout stresses heap depth: a wide population of pending
// events (deep-buffer sweeps hold tens of thousands) with steady push/pop.
func BenchmarkEngineFanout(b *testing.B) {
	eng := sim.NewEngine(1)
	fn := func() {}
	const pendingEvents = 1 << 14
	for i := 0; i < pendingEvents; i++ {
		eng.After(units.Time(1000+i*7%8999), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(10000, fn) // lands deep in the pending population
		eng.Run(eng.Now() + 1)
	}
	b.StopTimer()
	reportEventsPerSec(b, eng)
}

// BenchmarkRegistryHotPath pins the introspection plane's hot-path cost:
// counter, gauge, histogram and labeled-counter bumps must stay at 0
// allocs/op (gated by cmd/benchgate) so instrumentation can ride per-packet
// paths without perturbing the simulator's zero-alloc guarantees.
func BenchmarkRegistryHotPath(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("bench_events_total", "")
	g := r.Gauge("bench_pending", "")
	h := r.Histogram("bench_fct_ns", "")
	v := r.CounterVec("bench_drops_total", "", "reason", "overflow", "fault")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Add(1)
		h.Observe(int64(i)<<7 + 3)
		v.At(i & 1).Inc()
	}
}

func reportEventsPerSec(b *testing.B, eng *sim.Engine) {
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(eng.Events())/b.Elapsed().Seconds(), "events/s")
	}
}

// BenchmarkQueueImpl compares the rank-sorted queue against the FIFO at
// switch-realistic occupancy (~200 packets).
func BenchmarkQueueImpl(b *testing.B) {
	for _, kind := range []string{"fifo", "sorted"} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			benchQueue(b, kind)
		})
	}
}

func benchQueue(b *testing.B, kind string) {
	mk := func(p *packet.Packet, r uint32) *packet.Packet {
		p.Marked = true
		p.Info.RFS = r
		p.PayloadLen = packet.MSS
		return p
	}
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		pkts[i] = mk(&packet.Packet{}, uint32(i*2654435761))
	}
	var q buffer.Queue
	if kind == "fifo" {
		q = buffer.NewDropTail(1 << 30)
	} else {
		q = buffer.NewSorted(1 << 30)
	}
	// Prefill to steady-state occupancy.
	for i := 0; i < 200; i++ {
		q.Push(pkts[i%len(pkts)])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(pkts[i%len(pkts)])
		q.Pop()
	}
}

func BenchmarkSimulationThroughput(b *testing.B) {
	// Events per second of a full 16-host simulation at 50% load: the gauge
	// for how much simulated traffic a wall-clock second buys.
	for i := 0; i < b.N; i++ {
		cfg := vertigo.Defaults(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
		cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4
		cfg.Duration = 20 * time.Millisecond
		cfg.BackgroundLoad = 0.25
		cfg.IncastScale = 8
		cfg.IncastFlowKB = 20
		cfg.IncastLoad = 0.25
		rep, err := vertigo.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Events), "events/run")
	}
}

// BenchmarkSeeds verifies run-to-run variance across seeds stays sane while
// doubling as a determinism smoke check (same seed twice).
func BenchmarkSeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var prev *vertigo.Report
		for _, seed := range []int64{1, 1, 2} {
			cfg := vertigo.Defaults(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
			cfg.Seed = seed
			cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4
			cfg.Duration = 10 * time.Millisecond
			cfg.BackgroundLoad = 0.3
			cfg.IncastScale = 8
			cfg.IncastFlowKB = 20
			cfg.IncastLoad = 0.2
			rep, err := vertigo.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if seed == 1 && prev != nil && rep.Events != prev.Events {
				b.Fatal("determinism violated: same seed, different event count " +
					strconv.FormatUint(rep.Events, 10) + " vs " + strconv.FormatUint(prev.Events, 10))
			}
			if seed == 1 {
				prev = rep
			}
		}
	}
}
